(* Tests for the psn_sim library: workload generation, the event-driven
   engine's exchange/cascade semantics, metrics, and the multi-seed
   runner. *)

module Contact = Core.Contact
module Trace = Core.Trace
module Message = Core.Message
module Workload = Core.Workload
module Algorithm = Core.Algorithm
module Engine = Core.Engine
module Metrics = Core.Metrics
module Runner = Core.Runner
module Rng = Core.Rng

let feps = Alcotest.float 1e-9

let epidemic = Algorithm.stateless ~name:"Epidemic" (fun _ -> true)
let never = Algorithm.stateless ~name:"Never" (fun _ -> false)

let msg ?(id = 0) ~src ~dst t_create = Message.make ~id ~src ~dst ~t_create

(* --- Message / Workload --- *)

let test_message_validation () =
  Alcotest.check_raises "src=dst" (Invalid_argument "Message.make: src = dst") (fun () ->
      ignore (msg ~src:1 ~dst:1 0.))

let test_workload_poisson () =
  let spec = { Workload.rate = 0.5; t_start = 0.; t_end = 2000.; n_nodes = 20 } in
  let msgs = Workload.generate ~rng:(Rng.create ~seed:1L ()) spec in
  let n = List.length msgs in
  (* ~1000 expected; allow generous slack *)
  Alcotest.(check bool) (Printf.sprintf "count %d near 1000" n) true (n > 850 && n < 1150);
  let rec sorted = function
    | (a : Message.t) :: (b :: _ as rest) -> a.Message.t_create <= b.Message.t_create && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "chronological" true (sorted msgs);
  List.iteri (fun i (m : Message.t) -> Alcotest.(check int) "dense ids" i m.Message.id) msgs;
  List.iter
    (fun (m : Message.t) ->
      if m.Message.src = m.Message.dst then Alcotest.fail "self message";
      if m.Message.t_create < 0. || m.Message.t_create >= 2000. then
        Alcotest.fail "creation outside window")
    msgs

let test_workload_paper_spec () =
  let spec = Workload.paper_spec ~n_nodes:98 in
  Alcotest.check feps "rate" 0.25 spec.Workload.rate;
  Alcotest.check feps "window" 7200. spec.Workload.t_end

let test_workload_fixed_count () =
  let spec = { Workload.rate = 0.25; t_start = 100.; t_end = 200.; n_nodes = 5 } in
  let msgs = Workload.fixed_count ~rng:(Rng.create ~seed:2L ()) spec ~count:17 in
  Alcotest.(check int) "count" 17 (List.length msgs);
  List.iter
    (fun (m : Message.t) ->
      if m.Message.t_create < 100. || m.Message.t_create >= 200. then Alcotest.fail "outside window")
    msgs

let test_workload_validation () =
  match Workload.validate { Workload.rate = 0.; t_start = 0.; t_end = 1.; n_nodes = 5 } with
  | Ok () -> Alcotest.fail "accepted zero rate"
  | Error _ -> ()

(* --- Engine semantics --- *)

let test_direct_delivery_at_contact_start () =
  (* Message exists before the contact; delivery at contact start. *)
  let trace =
    Trace.create ~n_nodes:2 ~horizon:100. [ Contact.make ~a:0 ~b:1 ~t_start:30. ~t_end:40. ]
  in
  let outcome = Engine.run ~trace ~messages:[ msg ~src:0 ~dst:1 10. ] never in
  Alcotest.(check (option (float 1e-9))) "delivered at 30" (Some 30.)
    outcome.Engine.records.(0).Engine.delivered;
  Alcotest.(check (option (float 1e-9))) "delay" (Some 20.) (Engine.delay outcome.Engine.records.(0))

let test_delivery_on_creation_mid_contact () =
  (* Contact already active when the message is created: instant delivery. *)
  let trace =
    Trace.create ~n_nodes:2 ~horizon:100. [ Contact.make ~a:0 ~b:1 ~t_start:10. ~t_end:60. ]
  in
  let outcome = Engine.run ~trace ~messages:[ msg ~src:0 ~dst:1 30. ] never in
  Alcotest.(check (option (float 1e-9))) "instant" (Some 30.)
    outcome.Engine.records.(0).Engine.delivered

let test_no_delivery_after_contact_ends () =
  let trace =
    Trace.create ~n_nodes:2 ~horizon:100. [ Contact.make ~a:0 ~b:1 ~t_start:10. ~t_end:20. ]
  in
  let outcome = Engine.run ~trace ~messages:[ msg ~src:0 ~dst:1 50. ] epidemic in
  Alcotest.(check (option (float 1e-9))) "undelivered" None
    outcome.Engine.records.(0).Engine.delivered

let test_relay_chain_over_time () =
  (* 0-1 then later 1-2: epidemic relays; Never does not. *)
  let trace =
    Trace.create ~n_nodes:3 ~horizon:100.
      [
        Contact.make ~a:0 ~b:1 ~t_start:10. ~t_end:20.;
        Contact.make ~a:1 ~b:2 ~t_start:50. ~t_end:60.;
      ]
  in
  let m = msg ~src:0 ~dst:2 0. in
  let flooded = Engine.run ~trace ~messages:[ m ] epidemic in
  Alcotest.(check (option (float 1e-9))) "epidemic relays" (Some 50.)
    flooded.Engine.records.(0).Engine.delivered;
  (* one relay transfer (0 -> 1) plus the final delivery transmission
     (1 -> 2): both cost a transmission, so both count *)
  Alcotest.(check int) "relay + delivery transmissions" 2 flooded.Engine.copies;
  let direct = Engine.run ~trace ~messages:[ m ] never in
  Alcotest.(check (option (float 1e-9))) "direct fails" None
    direct.Engine.records.(0).Engine.delivered

let test_cascade_through_active_contacts () =
  (* 0-1 and 1-2 both active when 0-1 starts: the copy cascades to 2
     within the same instant. *)
  let trace =
    Trace.create ~n_nodes:3 ~horizon:100.
      [
        Contact.make ~a:1 ~b:2 ~t_start:5. ~t_end:50.;
        Contact.make ~a:0 ~b:1 ~t_start:10. ~t_end:40.;
      ]
  in
  let outcome = Engine.run ~trace ~messages:[ msg ~src:0 ~dst:2 0. ] epidemic in
  Alcotest.(check (option (float 1e-9))) "cascaded" (Some 10.)
    outcome.Engine.records.(0).Engine.delivered

let test_cascade_on_creation () =
  (* Message created while 0-1 and 1-2 are active: immediate multi-hop. *)
  let trace =
    Trace.create ~n_nodes:3 ~horizon:100.
      [
        Contact.make ~a:0 ~b:1 ~t_start:5. ~t_end:50.;
        Contact.make ~a:1 ~b:2 ~t_start:6. ~t_end:50.;
      ]
  in
  let outcome = Engine.run ~trace ~messages:[ msg ~src:0 ~dst:2 20. ] epidemic in
  Alcotest.(check (option (float 1e-9))) "instant two-hop" (Some 20.)
    outcome.Engine.records.(0).Engine.delivered

let test_contact_end_blocks_exchange () =
  (* 1-2 ends before 0-1 begins: no cascade possible. *)
  let trace =
    Trace.create ~n_nodes:3 ~horizon:100.
      [
        Contact.make ~a:1 ~b:2 ~t_start:5. ~t_end:9.;
        Contact.make ~a:0 ~b:1 ~t_start:10. ~t_end:40.;
      ]
  in
  let outcome = Engine.run ~trace ~messages:[ msg ~src:0 ~dst:2 0. ] epidemic in
  Alcotest.(check (option (float 1e-9))) "no path" None outcome.Engine.records.(0).Engine.delivered

let test_minimal_progress_overrides_algorithm () =
  (* Never forwards, but a holder in contact with the destination still
     delivers (engine-enforced minimal progress). *)
  let trace =
    Trace.create ~n_nodes:2 ~horizon:100. [ Contact.make ~a:0 ~b:1 ~t_start:10. ~t_end:20. ]
  in
  let outcome = Engine.run ~trace ~messages:[ msg ~src:0 ~dst:1 0. ] never in
  Alcotest.(check bool) "delivered" true (outcome.Engine.records.(0).Engine.delivered <> None)

let test_engine_validation () =
  let trace =
    Trace.create ~n_nodes:2 ~horizon:100. [ Contact.make ~a:0 ~b:1 ~t_start:10. ~t_end:20. ]
  in
  Alcotest.check_raises "endpoint range"
    (Invalid_argument "Engine.run: message 0 destination n7 outside population of 2 nodes")
    (fun () -> ignore (Engine.run ~trace ~messages:[ msg ~src:0 ~dst:7 0. ] never));
  Alcotest.check_raises "source range"
    (Invalid_argument "Engine.run: message 0 source n9 outside population of 2 nodes")
    (fun () -> ignore (Engine.run ~trace ~messages:[ msg ~src:9 ~dst:1 0. ] never));
  Alcotest.check_raises "duplicate ids" (Invalid_argument "Engine.run: duplicate message id")
    (fun () ->
      ignore
        (Engine.run ~trace
           ~messages:[ msg ~id:0 ~src:0 ~dst:1 0.; msg ~id:0 ~src:1 ~dst:0 0. ]
           never))

let test_observe_contact_called () =
  let seen = ref [] in
  let spy =
    {
      (Algorithm.stateless ~name:"spy" (fun _ -> false)) with
      Algorithm.observe_contact = (fun ~time ~a ~b -> seen := (time, a, b) :: !seen);
    }
  in
  let trace =
    Trace.create ~n_nodes:3 ~horizon:100.
      [
        Contact.make ~a:0 ~b:1 ~t_start:10. ~t_end:20.;
        Contact.make ~a:1 ~b:2 ~t_start:30. ~t_end:40.;
      ]
  in
  ignore (Engine.run ~trace ~messages:[] spy);
  Alcotest.(check int) "two observations" 2 (List.length !seen)

(* Epidemic simulation is the continuous-time reference; the space-time
   flooding oracle discretises at 10 s, which can both delay it (the
   grid starts propagating one step after creation, contacts wholly
   inside the creation step are lost) and advance it (contacts disjoint
   in time but sharing a step chain as if concurrent). So individual
   deliveries may differ; the aggregate distribution must stay close. *)
let test_epidemic_matches_flood_oracle () =
  let rng = Rng.create ~seed:77L () in
  let agree = ref 0 and total = ref 0 and close = ref 0 and both = ref 0 in
  for _ = 1 to 40 do
    let n_nodes = 8 + Rng.int rng 6 in
    let contacts =
      List.init (40 + Rng.int rng 40) (fun _ ->
          let a = Rng.int rng n_nodes in
          let b = (a + 1 + Rng.int rng (n_nodes - 1)) mod n_nodes in
          let s = Rng.float rng 500. in
          Contact.make ~a ~b ~t_start:s ~t_end:(s +. 5. +. Rng.float rng 50.))
    in
    let trace = Trace.create ~n_nodes ~horizon:600. contacts in
    let src = Rng.int rng n_nodes in
    let dst = (src + 1 + Rng.int rng (n_nodes - 1)) mod n_nodes in
    let t_create = Rng.float rng 300. in
    let outcome = Engine.run ~trace ~messages:[ msg ~src ~dst t_create ] epidemic in
    let snap = Core.Snapshot.of_trace trace in
    let flood = Core.Reachability.flood snap ~src ~t_create in
    incr total;
    match (outcome.Engine.records.(0).Engine.delivered, Core.Reachability.arrival_time flood dst)
    with
    | None, None -> incr agree
    | Some sim, Some oracle ->
      incr agree;
      incr both;
      if Float.abs (sim -. oracle) <= 20. then incr close
    | Some _, None | None, Some _ -> ()
  done;
  Alcotest.(check bool)
    (Printf.sprintf "deliverability agreement %d/%d" !agree !total)
    true
    (!agree >= !total * 9 / 10);
  Alcotest.(check bool)
    (Printf.sprintf "close deliveries %d/%d" !close !both)
    true
    (!both > 10 && !close >= !both * 8 / 10)

(* Overlapping duplicate contacts between one pair must not confuse the
   active-contact bookkeeping: the pair stays connected until the last
   interval ends. *)
let test_overlapping_same_pair_contacts () =
  let trace =
    Trace.create ~n_nodes:3 ~horizon:100.
      [
        Contact.make ~a:0 ~b:1 ~t_start:10. ~t_end:50.;
        Contact.make ~a:0 ~b:1 ~t_start:20. ~t_end:30.;
        (* 1-2 opens while 0-1's first interval is still live but after
           its duplicate closed: the relay must still cascade *)
        Contact.make ~a:1 ~b:2 ~t_start:40. ~t_end:45.;
      ]
  in
  let outcome = Engine.run ~trace ~messages:[ msg ~src:0 ~dst:2 35. ] epidemic in
  Alcotest.(check (option (float 1e-9))) "cascade despite duplicate" (Some 40.)
    outcome.Engine.records.(0).Engine.delivered

(* Replication monotonicity: with the same workload, forwarding more
   aggressively never delivers fewer messages. *)
let test_replication_monotone () =
  let trace =
    Core.Generator.generate
      ~rng:(Rng.create ~seed:55L ())
      {
        Core.Generator.default with
        Core.Generator.n_mobile = 25;
        n_stationary = 5;
        horizon = 2400.;
        mean_contacts = 40.;
      }
  in
  let messages =
    Workload.fixed_count
      ~rng:(Rng.create ~seed:56L ())
      { Workload.rate = 0.1; t_start = 0.; t_end = 1600.; n_nodes = 30 }
      ~count:60
  in
  let delivered p =
    let algo =
      if p >= 1. then epidemic
      else begin
        (* deterministic thinning: forward iff hash of (msg, holder,
           peer) falls below p — monotone in p by construction *)
        let accept ctx =
          let h =
            Hashtbl.hash
              ( ctx.Algorithm.message.Message.id,
                ctx.Algorithm.holder,
                ctx.Algorithm.peer )
          in
          float_of_int (h land 0xFFFF) /. 65536. < p
        in
        Algorithm.stateless ~name:"thinned" accept
      end
    in
    let outcome = Engine.run ~trace ~messages algo in
    (Metrics.of_outcome outcome).Metrics.delivered
  in
  let d25 = delivered 0.25 and d75 = delivered 0.75 and d100 = delivered 1. in
  Alcotest.(check bool)
    (Printf.sprintf "monotone %d <= %d <= %d" d25 d75 d100)
    true
    (d25 <= d75 && d75 <= d100)

(* --- TTL --- *)

let test_ttl_blocks_late_delivery () =
  let trace =
    Trace.create ~n_nodes:2 ~horizon:100. [ Contact.make ~a:0 ~b:1 ~t_start:50. ~t_end:60. ]
  in
  let m = msg ~src:0 ~dst:1 10. in
  let fresh = Engine.run ~ttl:100. ~trace ~messages:[ m ] epidemic in
  Alcotest.(check bool) "within ttl delivers" true
    (fresh.Engine.records.(0).Engine.delivered <> None);
  let stale = Engine.run ~ttl:20. ~trace ~messages:[ m ] epidemic in
  Alcotest.(check (option (float 1e-9))) "expired undelivered" None
    stale.Engine.records.(0).Engine.delivered

let test_ttl_blocks_relaying () =
  let trace =
    Trace.create ~n_nodes:3 ~horizon:200.
      [
        Contact.make ~a:0 ~b:1 ~t_start:50. ~t_end:60.;
        Contact.make ~a:1 ~b:2 ~t_start:100. ~t_end:110.;
      ]
  in
  let m = msg ~src:0 ~dst:2 0. in
  let ok = Engine.run ~ttl:150. ~trace ~messages:[ m ] epidemic in
  Alcotest.(check bool) "long ttl relays" true (ok.Engine.records.(0).Engine.delivered <> None);
  (* the relay contact at t=100 falls past the 80 s lifetime *)
  let cut = Engine.run ~ttl:80. ~trace ~messages:[ m ] epidemic in
  Alcotest.(check (option (float 1e-9))) "short ttl blocks the second hop" None
    cut.Engine.records.(0).Engine.delivered

let test_ttl_validation () =
  let trace =
    Trace.create ~n_nodes:2 ~horizon:100. [ Contact.make ~a:0 ~b:1 ~t_start:50. ~t_end:60. ]
  in
  Alcotest.check_raises "non-positive ttl"
    (Invalid_argument "Engine.run: ttl must be positive (got 0)") (fun () ->
      ignore (Engine.run ~ttl:0. ~trace ~messages:[] epidemic));
  Alcotest.check_raises "negative ttl"
    (Invalid_argument "Engine.run: ttl must be positive (got -5)") (fun () ->
      ignore (Engine.run ~ttl:(-5.) ~trace ~messages:[] epidemic))

(* --- Metrics --- *)

let fixture_outcome () =
  let trace =
    Trace.create ~n_nodes:4 ~horizon:100.
      [
        Contact.make ~a:0 ~b:1 ~t_start:10. ~t_end:20.;
        Contact.make ~a:2 ~b:3 ~t_start:50. ~t_end:60.;
      ]
  in
  let messages =
    [ msg ~id:0 ~src:0 ~dst:1 0.; msg ~id:1 ~src:2 ~dst:3 10.; msg ~id:2 ~src:0 ~dst:3 0. ]
  in
  Engine.run ~trace ~messages epidemic

let test_metrics_of_outcome () =
  let m = Metrics.of_outcome (fixture_outcome ()) in
  Alcotest.(check int) "messages" 3 m.Metrics.messages;
  Alcotest.(check int) "delivered" 2 m.Metrics.delivered;
  Alcotest.(check (float 1e-9)) "success" (2. /. 3.) m.Metrics.success_rate;
  (* delays: 10 (msg0) and 40 (msg1) *)
  Alcotest.check feps "mean delay" 25. m.Metrics.mean_delay;
  Alcotest.check feps "median delay" 25. m.Metrics.median_delay

let test_metrics_delays_sorted () =
  let d = Metrics.delays (fixture_outcome ()) in
  Alcotest.(check (array (float 1e-9))) "sorted delays" [| 10.; 40. |] d

(* One delivered message with delay 5, same algorithm as the fixture. *)
let small_outcome () =
  let trace =
    Trace.create ~n_nodes:2 ~horizon:100. [ Contact.make ~a:0 ~b:1 ~t_start:5. ~t_end:10. ]
  in
  Engine.run ~trace ~messages:[ msg ~src:0 ~dst:1 0. ] epidemic

let test_metrics_pool () =
  (* Pooled delays are [5; 10; 40]: the median is the middle value, 10.
     A delivery-weighted mean of the per-run medians (25 and 5) would be
     (2*25 + 1*5)/3 = 18.33 — the bug this test pins down. *)
  let pooled = Metrics.pool [ fixture_outcome (); small_outcome () ] in
  Alcotest.(check int) "messages pooled" 4 pooled.Metrics.messages;
  Alcotest.(check int) "delivered pooled" 3 pooled.Metrics.delivered;
  Alcotest.check feps "success" 0.75 pooled.Metrics.success_rate;
  Alcotest.check feps "pooled median" 10. pooled.Metrics.median_delay;
  Alcotest.check feps "pooled mean" (55. /. 3.) pooled.Metrics.mean_delay

let test_metrics_pool_singleton_and_errors () =
  let o = fixture_outcome () in
  Alcotest.(check bool) "singleton = of_outcome" true
    (Stdlib.compare (Metrics.pool [ o ]) (Metrics.of_outcome o) = 0);
  Alcotest.check_raises "empty" (Invalid_argument "Metrics.pool: empty list") (fun () ->
      ignore (Metrics.pool []));
  let other =
    let trace =
      Trace.create ~n_nodes:2 ~horizon:100. [ Contact.make ~a:0 ~b:1 ~t_start:5. ~t_end:10. ]
    in
    Engine.run ~trace ~messages:[ msg ~src:0 ~dst:1 0. ] never
  in
  Alcotest.check_raises "mixed algorithms" (Invalid_argument "Metrics.pool: mixed algorithms")
    (fun () -> ignore (Metrics.pool [ o; other ]))

let test_metrics_grouped () =
  let outcome = fixture_outcome () in
  let groups =
    Metrics.grouped outcome ~cmp:Int.compare ~classify:(fun (m : Message.t) -> m.Message.src)
  in
  Alcotest.(check int) "two groups" 2 (List.length groups);
  let src0 = List.assoc 0 groups in
  Alcotest.(check int) "src 0 msgs" 2 src0.Metrics.messages;
  Alcotest.(check int) "src 0 delivered" 1 src0.Metrics.delivered;
  (* msg 0 costs its delivery transmission, msg 2 its relay to node 1 *)
  Alcotest.(check int) "src 0 copies" 2 src0.Metrics.copies;
  let total = List.fold_left (fun acc (_, g) -> acc + g.Metrics.copies) 0 groups in
  Alcotest.(check int) "group copies sum to outcome total" outcome.Engine.copies total

(* Regression: grouping used a polymorphic Hashtbl, under which a
   NaN-bearing key never equals itself — every record classified to
   NaN silently spawned its own single-record group. The explicit
   comparator ([Float.compare] grounds NaN) must coalesce them. *)
let test_metrics_grouped_nan_key () =
  let outcome = fixture_outcome () in
  (* src 0 (two messages) classifies to NaN, everything else to 1. *)
  let classify (m : Message.t) = if m.Message.src = 0 then Float.nan else 1. in
  let groups = Metrics.grouped outcome ~cmp:Float.compare ~classify in
  Alcotest.(check int) "NaN key forms one group, not one per record" 2 (List.length groups);
  let nan_group =
    List.find (fun (k, _) -> Float.is_nan k) groups |> fun (_, m) -> m.Metrics.messages
  in
  Alcotest.(check int) "both NaN-keyed records grouped together" 2 nan_group;
  let total = List.fold_left (fun acc (_, g) -> acc + g.Metrics.messages) 0 groups in
  Alcotest.(check int) "every record grouped exactly once" 3 total

let test_copies_direct_delivery () =
  (* Two nodes, one contact, one message: the only transmission is the
     src -> dst delivery itself, so copies is 1 (not 0). *)
  let trace =
    Trace.create ~n_nodes:2 ~horizon:100. [ Contact.make ~a:0 ~b:1 ~t_start:30. ~t_end:40. ]
  in
  let outcome = Engine.run ~trace ~messages:[ msg ~src:0 ~dst:1 10. ] epidemic in
  Alcotest.(check int) "record copies" 1 outcome.Engine.records.(0).Engine.copies;
  Alcotest.(check int) "outcome copies" 1 outcome.Engine.copies

let test_negative_creation_rejected () =
  (* Message.make already rejects negative times, but the record type is
     concrete, so the engine must validate what it is handed. *)
  let trace =
    Trace.create ~n_nodes:2 ~horizon:100. [ Contact.make ~a:0 ~b:1 ~t_start:10. ~t_end:20. ]
  in
  let rogue = { Message.id = 0; src = 0; dst = 1; t_create = -5. } in
  Alcotest.check_raises "negative t_create"
    (Invalid_argument "Engine.run: message created outside trace window") (fun () ->
      ignore (Engine.run ~trace ~messages:[ rogue ] never))

let test_event_drain_order () =
  (* A tie-heavy schedule: one contact ends at t = 20 exactly as three
     others start and three messages are created. The monomorphic event
     comparator pins the drain order — ends, then starts ascending on
     (a, b), then creations ascending on message id — so the probe log
     must come out the same however the inputs were listed. *)
  let trace =
    Trace.create ~n_nodes:6 ~horizon:100.
      [
        Contact.make ~a:0 ~b:1 ~t_start:5. ~t_end:20.;
        Contact.make ~a:2 ~b:3 ~t_start:20. ~t_end:40.;
        Contact.make ~a:0 ~b:2 ~t_start:20. ~t_end:40.;
        Contact.make ~a:1 ~b:3 ~t_start:20. ~t_end:40.;
      ]
  in
  let log = ref [] in
  let probe =
    {
      Algorithm.name = "Probe";
      observe_contact =
        (fun ~time ~a ~b -> log := Printf.sprintf "contact %d-%d@%g" a b time :: !log);
      on_create =
        (fun m -> log := Printf.sprintf "create %d@%g" m.Message.id m.Message.t_create :: !log);
      should_forward = (fun _ -> false);
      on_forward = (fun _ -> ());
    }
  in
  (* Listed out of id order on purpose: the comparator, not the list,
     decides. Message 2 (0 -> 1) tests the end-before-start rule: the
     only 0-1 contact closes at the very instant the message is born. *)
  let messages =
    [ msg ~id:2 ~src:0 ~dst:1 20.; msg ~id:0 ~src:0 ~dst:2 20.; msg ~id:1 ~src:1 ~dst:3 20. ]
  in
  let outcome = Engine.run ~trace ~messages probe in
  Alcotest.(check (list string)) "drain order"
    [
      "contact 0-1@5";
      "contact 0-2@20";
      "contact 1-3@20";
      "contact 2-3@20";
      "create 0@20";
      "create 1@20";
      "create 2@20";
    ]
    (List.rev !log);
  (* Records follow the (shuffled) message list order, so look up by id. *)
  let delivered_of id =
    let r =
      Array.to_list outcome.Engine.records
      |> List.find (fun (r : Engine.record) -> r.Engine.message.Message.id = id)
    in
    r.Engine.delivered
  in
  (* Creations run after the simultaneous starts, so 0 and 1 deliver
     instantly; the 0-1 contact's end ran first, so 2 never can. *)
  Alcotest.(check (option (float 1e-9))) "msg 0 via fresh contact" (Some 20.) (delivered_of 0);
  Alcotest.(check (option (float 1e-9))) "msg 1 via fresh contact" (Some 20.) (delivered_of 1);
  Alcotest.(check (option (float 1e-9))) "msg 2 missed the ended contact" None (delivered_of 2)

(* --- Runner --- *)

let runner_trace () =
  Trace.create ~n_nodes:6 ~horizon:1000.
    (List.init 30 (fun i ->
         let a = i mod 6 and b = (i + 1) mod 6 in
         Contact.make ~a ~b ~t_start:(float_of_int (i * 30)) ~t_end:(float_of_int ((i * 30) + 20))))

let runner_spec seeds =
  {
    Runner.workload = { Workload.rate = 0.05; t_start = 0.; t_end = 600.; n_nodes = 6 };
    seeds = Runner.default_seeds seeds;
  }

let test_runner_deterministic () =
  let trace = runner_trace () in
  let spec = runner_spec 2 in
  let factory _ = epidemic in
  let a = Runner.run_algorithm ~trace ~spec ~factory () in
  let b = Runner.run_algorithm ~trace ~spec ~factory () in
  Alcotest.check feps "same success" a.Metrics.success_rate b.Metrics.success_rate;
  Alcotest.(check int) "two outcomes" 2 (List.length (Runner.outcomes ~trace ~spec ~factory ()))

(* The determinism contract of the parallel layer: any jobs value gives
   bit-identical results, because each run owns its RNG and results are
   keyed by input index. *)
let test_runner_parallel_deterministic () =
  let trace = runner_trace () in
  let spec = runner_spec 3 in
  let check_factory name factory =
    let seq = Runner.outcomes ~jobs:1 ~trace ~spec ~factory () in
    let par = Runner.outcomes ~jobs:4 ~trace ~spec ~factory () in
    Alcotest.(check bool) (name ^ ": outcomes identical") true (Stdlib.compare seq par = 0);
    Alcotest.(check bool) (name ^ ": pooled metrics identical") true
      (Stdlib.compare (Metrics.pool seq) (Metrics.pool par) = 0)
  in
  check_factory "epidemic" (fun _ -> epidemic);
  check_factory "never" (fun _ -> never);
  let factories = [ (fun _ -> epidemic); (fun _ -> never) ] in
  let seq = Runner.run_many ~jobs:1 ~trace ~spec ~factories () in
  let par = Runner.run_many ~jobs:4 ~trace ~spec ~factories () in
  Alcotest.(check bool) "run_many identical across jobs" true (Stdlib.compare seq par = 0)

let test_parallel_map () =
  let input = Array.init 100 (fun i -> i) in
  let sq i = i * i in
  Alcotest.(check (array int)) "order preserved" (Array.map sq input)
    (Core.Parallel.map ~jobs:4 sq input);
  Alcotest.(check (array int)) "jobs=1 matches jobs=7" (Core.Parallel.map ~jobs:1 sq input)
    (Core.Parallel.map ~jobs:7 sq input);
  Alcotest.(check (array int)) "empty input" [||] (Core.Parallel.map ~jobs:4 sq [||]);
  Alcotest.check_raises "worker exception propagates" (Invalid_argument "boom") (fun () ->
      ignore (Core.Parallel.map ~jobs:4 (fun i -> if i = 63 then invalid_arg "boom" else i) input));
  Alcotest.check_raises "jobs must be positive"
    (Invalid_argument "Parallel.map: jobs must be >= 1") (fun () ->
      ignore (Core.Parallel.map ~jobs:0 sq input));
  Alcotest.check_raises "chunk must be positive"
    (Invalid_argument "Parallel.map: chunk must be >= 1") (fun () ->
      ignore (Core.Parallel.map ~chunk:0 sq input))

(* With several tasks failing, the chunked pool must re-raise the
   exception of the lowest failing index whatever the claim schedule —
   workers keep draining after a failure, so every failure is observed
   and the choice is deterministic for any jobs × chunk. *)
let test_parallel_chunked_exception_order () =
  let input = Array.init 40 (fun i -> i) in
  List.iter
    (fun jobs ->
      List.iter
        (fun chunk ->
          Alcotest.check_raises
            (Printf.sprintf "lowest index wins (jobs=%d chunk=%d)" jobs chunk)
            (Invalid_argument "boom 17")
            (fun () ->
              ignore
                (Core.Parallel.map ~jobs ~chunk
                   (fun i ->
                     if i = 17 || i = 23 || i = 39 then invalid_arg (Printf.sprintf "boom %d" i)
                     else i)
                   input)))
        [ 1; 3; 64 ])
    [ 1; 2; 4; 7 ]

(* --- graceful degradation: map_result cells, retries, checkpoint --- *)

module Failpoint = Core.Failpoint

let with_failpoints spec f =
  match Failpoint.parse spec with
  | Error msg -> Alcotest.fail msg
  | Ok plan ->
    Failpoint.install plan;
    Fun.protect ~finally:Failpoint.uninstall f

(* Exceptions carry closures in some payloads; compare cells through a
   describable shape instead. *)
let cell_shape = function Ok v -> Ok v | Error e -> Error (Failpoint.describe e)

let test_parallel_map_result_cells () =
  let input = Array.init 30 (fun i -> i) in
  let f _env _sink i = if i mod 7 = 3 then raise Stdlib.Not_found else i * 2 in
  let run ~jobs ~chunk =
    Core.Parallel.map_result ~jobs ~chunk ~env:(fun () -> ()) f input |> Array.map cell_shape
  in
  let seq = run ~jobs:1 ~chunk:1 in
  Array.iteri
    (fun i cell ->
      match cell with
      | Ok v ->
        Alcotest.(check int) "ok cell value" (i * 2) v;
        Alcotest.(check bool) "ok cell position" false (i mod 7 = 3)
      | Error _ -> Alcotest.(check bool) "error cell position" true (i mod 7 = 3))
    seq;
  List.iter
    (fun jobs ->
      List.iter
        (fun chunk ->
          Alcotest.(check bool)
            (Printf.sprintf "cells identical jobs=%d chunk=%d" jobs chunk)
            true
            (Stdlib.compare (run ~jobs ~chunk) seq = 0))
        [ 1; 3; 64 ])
    [ 2; 4; 7 ];
  Alcotest.check_raises "join_results re-raises" Stdlib.Not_found (fun () ->
      ignore
        (Core.Parallel.join_results
           (Core.Parallel.map_result ~jobs:4 ~env:(fun () -> ()) f input)))

let test_parallel_retries_recover () =
  let input = Array.init 12 (fun i -> i) in
  let f _env _sink i =
    Failpoint.trigger ~key:(Int64.of_int i) "test.retry";
    i + 100
  in
  with_failpoints "test.retry=flaky*2" (fun () ->
      (* two extra attempts beat a site that fails the first two *)
      let cells =
        Core.Parallel.map_result ~jobs:3 ~chunk:2 ~retries:2 ~env:(fun () -> ()) f input
      in
      Array.iteri
        (fun i cell ->
          match cell with
          | Ok v -> Alcotest.(check int) "recovered value" (i + 100) v
          | Error _ -> Alcotest.failf "task %d not recovered with retries=2" i)
        cells;
      (* one extra attempt does not *)
      let short = Core.Parallel.map_result ~jobs:3 ~retries:1 ~env:(fun () -> ()) f input in
      Array.iter
        (function
          | Ok _ -> Alcotest.fail "retries=1 cannot beat flaky*2"
          | Error e -> Alcotest.(check bool) "still transient" true (Failpoint.is_transient e))
        short)

let test_parallel_permanent_not_retried () =
  let attempts = Atomic.make 0 in
  let f _env _sink () =
    Atomic.incr attempts;
    raise Stdlib.Exit
  in
  let cells = Core.Parallel.map_result ~jobs:1 ~retries:5 ~env:(fun () -> ()) f [| () |] in
  Alcotest.(check int) "permanent failure tried once" 1 (Atomic.get attempts);
  match cells.(0) with
  | Error Stdlib.Exit -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected the task's own exception in the cell"

(* Checkpointed rounds reach the cache even when a later task fails
   permanently, and a rerun against the same cache (the CLI's --resume)
   reproduces the uninterrupted output bit for bit. *)
let test_cached_map_checkpoint_resume () =
  let tbl = Hashtbl.create 32 in
  let find i = Hashtbl.find_opt tbl i in
  let store i v = Hashtbl.replace tbl i v in
  let input = Array.init 20 (fun i -> i) in
  let compute _env _sink i =
    Failpoint.trigger ~key:(Int64.of_int i) "test.task";
    i * i
  in
  with_failpoints "test.task=error@13" (fun () ->
      let cells =
        Core.Runner.cached_map_result ~jobs:1 ~chunk:1 ~checkpoint:4 ~env:(fun () -> ())
          ~find ~store ~compute input
      in
      let failed =
        Array.to_list cells |> List.filter (function Error _ -> true | Ok _ -> false)
      in
      Alcotest.(check int) "one failed cell" 1 (List.length failed));
  Alcotest.(check int) "successes checkpointed" 19 (Hashtbl.length tbl);
  let resumed =
    Core.Runner.cached_map ~jobs:4 ~chunk:3 ~checkpoint:4 ~env:(fun () -> ()) ~find ~store
      ~compute input
  in
  Alcotest.(check (array int)) "resumed = uninterrupted" (Array.map (fun i -> i * i) input)
    resumed;
  Alcotest.check_raises "negative checkpoint rejected"
    (Invalid_argument "Runner.cached_map: checkpoint must be >= 0") (fun () ->
      ignore
        (Core.Runner.cached_map ~checkpoint:(-1) ~env:(fun () -> ()) ~find ~store ~compute
           input))

(* Scratch reuse is invisible: the same scratch replayed across runs —
   different seeds, a smaller population, even straight after an
   aborted drain left it dirty — yields outcomes bit-identical to
   fresh-scratch runs. *)
let test_engine_scratch_reuse () =
  let trace = runner_trace () in
  let messages seed =
    Workload.generate ~rng:(Rng.create ~seed ())
      { Workload.rate = 0.05; t_start = 0.; t_end = 600.; n_nodes = 6 }
  in
  let scratch = Engine.scratch () in
  let seeds = [ 7L; 8L; 9L ] in
  let fresh = List.map (fun s -> Engine.run ~trace ~messages:(messages s) epidemic) seeds in
  let reused =
    List.map (fun s -> Engine.run ~scratch ~trace ~messages:(messages s) epidemic) seeds
  in
  Alcotest.(check bool) "reused scratch identical" true (Stdlib.compare fresh reused = 0);
  (* The same scratch over a smaller population: stale rows beyond the
     new n must never be read. *)
  let small =
    Trace.create ~n_nodes:2 ~horizon:100. [ Contact.make ~a:0 ~b:1 ~t_start:30. ~t_end:40. ]
  in
  let with_scratch = Engine.run ~scratch ~trace:small ~messages:[ msg ~src:0 ~dst:1 10. ] never in
  let without = Engine.run ~trace:small ~messages:[ msg ~src:0 ~dst:1 10. ] never in
  Alcotest.(check bool) "smaller population identical" true
    (Stdlib.compare with_scratch without = 0)

let test_engine_scratch_dirty () =
  let trace = runner_trace () in
  let messages =
    Workload.generate
      ~rng:(Rng.create ~seed:5L ())
      { Workload.rate = 0.05; t_start = 0.; t_end = 600.; n_nodes = 6 }
  in
  let scratch = Engine.scratch () in
  (* An algorithm callback that raises mid-drain aborts the run with
     the adjacency state mid-flight... *)
  let seen = ref 0 in
  let bomb =
    {
      Algorithm.name = "Bomb";
      observe_contact =
        (fun ~time:_ ~a:_ ~b:_ ->
          incr seen;
          if !seen = 5 then invalid_arg "mid-drain");
      on_create = (fun _ -> ());
      should_forward = (fun _ -> true);
      on_forward = (fun _ -> ());
    }
  in
  (match Engine.run ~scratch ~trace ~messages bomb with
  | _ -> Alcotest.fail "bomb did not raise"
  | exception Invalid_argument _ -> ());
  (* ...and the next run on the same scratch must rebuild the invariant
     instead of replaying ghost contacts. *)
  let after = Engine.run ~scratch ~trace ~messages epidemic in
  let fresh = Engine.run ~trace ~messages epidemic in
  Alcotest.(check bool) "dirty scratch rebuilt" true (Stdlib.compare after fresh = 0)

(* The issue's qcheck property: pooled metrics of a chunked parallel
   run are bit-identical (Metrics.equal — IEEE payload equality) to
   the jobs = 1 run, across jobs × chunk × task-count combinations
   including empty, single-task, fewer-tasks-than-workers and
   many-more-tasks-than-workers shapes. *)
let qcheck_tests =
  let open QCheck2 in
  let trace = runner_trace () in
  let gen =
    Gen.triple
      (Gen.oneofl [ 1; 2; 4; 7 ])
      (Gen.oneofl [ 1; 3; 64 ])
      (Gen.oneofl [ 0; 1; 2; 3; 25 ])
  in
  [
    Test.make ~count:60 ~name:"chunked runs bit-identical to jobs=1"
      ~print:(fun (jobs, chunk, n) -> Printf.sprintf "jobs=%d chunk=%d tasks=%d" jobs chunk n)
      gen
      (fun (jobs, chunk, n) ->
        let tasks = Array.init n (fun i -> i * 3) in
        let seq = Array.map (fun i -> (i * 7) mod 13) tasks in
        let par = Core.Parallel.map ~jobs ~chunk (fun i -> (i * 7) mod 13) tasks in
        let arrays_ok = Stdlib.compare par seq = 0 in
        let metrics_ok =
          n = 0
          ||
          let spec = runner_spec n in
          let factory _ = epidemic in
          let a = Runner.run_algorithm ~jobs:1 ~chunk:1 ~trace ~spec ~factory () in
          let b = Runner.run_algorithm ~jobs ~chunk ~trace ~spec ~factory () in
          Metrics.equal a b
        in
        arrays_ok && metrics_ok);
    (* An injected failure schedule is part of the determinism
       contract: the same plan produces the same Ok/Error cell pattern
       whatever the jobs × chunk scheduling. *)
    Test.make ~count:40 ~name:"failpoint schedule independent of jobs x chunk"
      ~print:(fun (jobs, chunk, n) -> Printf.sprintf "jobs=%d chunk=%d tasks=%d" jobs chunk n)
      gen
      (fun (jobs, chunk, n) ->
        let tasks = Array.init n (fun i -> i) in
        let f _env _sink i =
          Core.Failpoint.trigger ~key:(Int64.of_int i) "prop.site";
          i
        in
        let run ~jobs ~chunk =
          match Core.Failpoint.parse "prop.site=error%0.3" with
          | Error msg -> QCheck2.Test.fail_report msg
          | Ok plan ->
            Core.Failpoint.install plan;
            Fun.protect ~finally:Core.Failpoint.uninstall (fun () ->
                Core.Parallel.map_result ~jobs ~chunk ~env:(fun () -> ()) f tasks
                |> Array.map (function
                     | Ok v -> Ok v
                     | Error e -> Error (Core.Failpoint.describe e)))
        in
        Stdlib.compare (run ~jobs ~chunk) (run ~jobs:1 ~chunk:1) = 0);
    (* Kill-and-resume: a sweep that died after checkpointing some
       rounds, rerun against the same cache with any jobs value,
       reports metrics bit-identical to a never-interrupted run. *)
    Test.make ~count:20 ~name:"kill-and-resume metrics bit-identical"
      ~print:(fun (jobs, kill_at) -> Printf.sprintf "jobs=%d kill_at=%d" jobs kill_at)
      (Gen.pair (Gen.oneofl [ 1; 2; 4; 7 ]) (Gen.oneofl [ 1; 2; 5 ]))
      (fun (jobs, kill_at) ->
        let spec = runner_spec 6 in
        let factory _ = epidemic in
        let baseline = Runner.run_algorithm ~jobs:1 ~trace ~spec ~factory () in
        let tbl = Hashtbl.create 8 in
        let cache =
          {
            Core.Cache.find = (fun ~seed -> Hashtbl.find_opt tbl seed);
            store = (fun ~seed o -> Hashtbl.replace tbl seed o);
          }
        in
        (match Core.Failpoint.parse (Printf.sprintf "runner.task=error@%d" kill_at) with
        | Error msg -> QCheck2.Test.fail_report msg
        | Ok plan ->
          Core.Failpoint.install plan;
          Fun.protect ~finally:Core.Failpoint.uninstall (fun () ->
              ignore
                (Runner.outcomes_result ~jobs:1 ~chunk:1 ~checkpoint:1 ~store:cache ~trace
                   ~spec ~factory ())));
        let resumed =
          Runner.run_algorithm ~jobs ~checkpoint:2 ~store:cache ~trace ~spec ~factory ()
        in
        Metrics.equal baseline resumed);
  ]
  |> List.map QCheck_alcotest.to_alcotest

(* --- Faults --- *)

module Faults = Core.Faults

let fault_spec =
  { Faults.loss = 0.3; crash_rate = 0.002; down_time = 60.; jitter = 0.25; seed = 11L }

let test_faults_spec_basics () =
  Alcotest.(check bool) "none validates" true (Faults.validate Faults.none = Ok ());
  Alcotest.(check bool) "none is null" true (Faults.is_null Faults.none);
  Alcotest.(check bool) "spec validates" true (Faults.validate fault_spec = Ok ());
  Alcotest.(check bool) "spec is not null" false (Faults.is_null fault_spec);
  let rejected spec = match Faults.validate spec with Error _ -> true | Ok () -> false in
  Alcotest.(check bool) "loss = 1 rejected" true (rejected { fault_spec with Faults.loss = 1. });
  Alcotest.(check bool) "NaN loss rejected" true
    (rejected { fault_spec with Faults.loss = Float.nan });
  Alcotest.(check bool) "negative crash_rate rejected" true
    (rejected { fault_spec with Faults.crash_rate = -1. });
  Alcotest.(check bool) "jitter > 1 rejected" true
    (rejected { fault_spec with Faults.jitter = 1.5 });
  let doubled = Faults.scale 2. fault_spec in
  Alcotest.check feps "scale doubles loss" 0.6 doubled.Faults.loss;
  Alcotest.check feps "scale doubles crash_rate" 0.004 doubled.Faults.crash_rate;
  Alcotest.check feps "scale keeps down_time" 60. doubled.Faults.down_time;
  Alcotest.(check bool) "scale 0 is null" true (Faults.is_null (Faults.scale 0. fault_spec));
  Alcotest.(check bool) "scale clamps jitter" true
    ((Faults.scale 100. fault_spec).Faults.jitter <= 1.);
  Alcotest.(check bool) "scale clamps loss below 1" true
    ((Faults.scale 100. fault_spec).Faults.loss < 1.);
  Alcotest.check_raises "negative factor" (Invalid_argument "Faults.scale: factor must be >= 0")
    (fun () -> ignore (Faults.scale (-1.) fault_spec))

let test_faults_downtime_intervals () =
  let horizon = 5000. in
  let plan = Faults.compile ~n_nodes:10 ~horizon fault_spec in
  for node = 0 to 9 do
    let intervals = Faults.downtime plan node in
    let rec check last = function
      | [] -> ()
      | (d, r) :: rest ->
        if not (d >= last && d < r && r <= horizon) then
          Alcotest.failf "node %d: bad interval [%g, %g) after %g" node d r last;
        check r rest
    in
    check 0. intervals;
    (* node_down agrees with the interval list *)
    List.iter
      (fun (d, r) ->
        Alcotest.(check bool) "down at crash" true (Faults.node_down plan node d);
        Alcotest.(check bool) "up at recovery" false (Faults.node_down plan node r);
        Alcotest.(check bool) "down mid-interval" true
          (Faults.node_down plan node ((d +. r) /. 2.)))
      intervals
  done;
  Alcotest.check_raises "node out of range" (Invalid_argument "Faults.downtime: node out of range")
    (fun () -> ignore (Faults.downtime plan 10));
  (* a null spec compiles to an empty plan *)
  let null_plan = Faults.compile ~n_nodes:10 ~horizon Faults.none in
  for node = 0 to 9 do
    Alcotest.(check (list (pair (float 0.) (float 0.)))) "no downtime" []
      (Faults.downtime null_plan node)
  done

let test_faults_degrade () =
  let trace = runner_trace () in
  let horizon = Trace.horizon trace in
  let null_plan = Faults.compile ~n_nodes:(Trace.n_nodes trace) ~horizon Faults.none in
  Alcotest.(check bool) "null plan returns the trace itself" true
    (Faults.degrade null_plan trace == trace);
  let plan = Faults.compile ~n_nodes:(Trace.n_nodes trace) ~horizon fault_spec in
  let degraded = Faults.degrade plan trace in
  Alcotest.(check int) "population preserved" (Trace.n_nodes trace) (Trace.n_nodes degraded);
  Alcotest.check feps "horizon preserved" horizon (Trace.horizon degraded);
  Alcotest.(check bool) "no contact created" true
    (Trace.n_contacts degraded <= Trace.n_contacts trace);
  let originals = ref [] in
  Trace.iter_contacts trace (fun c -> originals := c :: !originals);
  Trace.iter_contacts degraded (fun (c : Contact.t) ->
      (* every degraded contact nests inside an original of the same pair *)
      let nested =
        List.exists
          (fun (o : Contact.t) ->
            o.Contact.a = c.Contact.a && o.Contact.b = c.Contact.b
            && c.Contact.t_start >= o.Contact.t_start
            && c.Contact.t_end <= o.Contact.t_end)
          !originals
      in
      if not nested then Alcotest.failf "degraded contact not inside an original";
      (* and never overlaps an endpoint's downtime *)
      List.iter
        (fun node ->
          List.iter
            (fun (d, r) ->
              if c.Contact.t_start < r && c.Contact.t_end > d then
                Alcotest.failf "contact [%g, %g) overlaps node %d downtime [%g, %g)"
                  c.Contact.t_start c.Contact.t_end node d r)
            (Faults.downtime plan node))
        [ c.Contact.a; c.Contact.b ];
      (* degradation is deterministic *)
      ());
  Alcotest.(check bool) "degrade is reproducible" true
    (Stdlib.compare (Faults.degrade plan trace) degraded = 0)

let test_faults_transfer_loss () =
  let horizon = 1000. in
  let plan = Faults.compile ~n_nodes:6 ~horizon fault_spec in
  let verdict msg time = Faults.transfer_fails plan ~msg ~holder:0 ~peer:1 ~time in
  (* pure: replaying the same key gives the same verdict *)
  for m = 0 to 50 do
    Alcotest.(check bool) "stable verdict" (verdict m 10.) (verdict m 10.)
  done;
  (* frequency tracks the configured probability *)
  let fails = ref 0 and total = 4000 in
  for m = 0 to total - 1 do
    if verdict m (float_of_int m) then incr fails
  done;
  let rate = float_of_int !fails /. float_of_int total in
  Alcotest.(check bool)
    (Printf.sprintf "empirical loss %.3f near 0.3" rate)
    true
    (rate > 0.25 && rate < 0.35);
  (* a zero-loss plan never fails a transfer *)
  let lossless = Faults.compile ~n_nodes:6 ~horizon { fault_spec with Faults.loss = 0. } in
  for m = 0 to 200 do
    Alcotest.(check bool) "lossless" false
      (Faults.transfer_fails lossless ~msg:m ~holder:2 ~peer:3 ~time:5.)
  done

let test_engine_attempts () =
  let trace = runner_trace () in
  let messages =
    Workload.generate
      ~rng:(Rng.create ~seed:5L ())
      { Workload.rate = 0.05; t_start = 0.; t_end = 600.; n_nodes = 6 }
  in
  let clean = Engine.run ~trace ~messages epidemic in
  Alcotest.(check int) "fault-free attempts equal copies" clean.Engine.copies
    clean.Engine.attempts;
  Alcotest.check feps "fault-free overhead is 1" 1.
    (Metrics.overhead (Metrics.of_outcome clean));
  let lossy =
    Faults.compile ~n_nodes:(Trace.n_nodes trace) ~horizon:(Trace.horizon trace)
      { Faults.none with Faults.loss = 0.5; seed = 21L }
  in
  let faulted = Engine.run ~faults:lossy ~trace ~messages epidemic in
  Alcotest.(check bool) "lost transfers still count as attempts" true
    (faulted.Engine.attempts > faulted.Engine.copies);
  Alcotest.(check bool) "loss cannot add copies" true
    (faulted.Engine.copies <= clean.Engine.copies)

(* The acceptance-criteria test: a faulted fixed-seed run is
   bit-identical whatever the domain count, because every fault verdict
   is keyed by entity, never by scheduling order. *)
let test_faulted_runner_deterministic () =
  let trace = runner_trace () in
  let spec = runner_spec 3 in
  let plan =
    Faults.compile ~n_nodes:(Trace.n_nodes trace) ~horizon:(Trace.horizon trace) fault_spec
  in
  let factories = [ (fun _ -> epidemic); (fun _ -> never) ] in
  let seq = Runner.run_many ~jobs:1 ~faults:plan ~trace ~spec ~factories () in
  let par = Runner.run_many ~jobs:4 ~faults:plan ~trace ~spec ~factories () in
  Alcotest.(check bool) "faulted run_many identical across jobs" true
    (Stdlib.compare seq par = 0);
  let seq_o = Runner.outcomes ~jobs:1 ~faults:plan ~trace ~spec ~factory:(fun _ -> epidemic) () in
  let par_o = Runner.outcomes ~jobs:4 ~faults:plan ~trace ~spec ~factory:(fun _ -> epidemic) () in
  Alcotest.(check bool) "faulted outcomes identical across jobs" true
    (Stdlib.compare seq_o par_o = 0);
  (* faults change results (the plan is actually consulted) *)
  let clean = Runner.outcomes ~jobs:1 ~trace ~spec ~factory:(fun _ -> epidemic) () in
  Alcotest.(check bool) "faults alter the outcome" true (Stdlib.compare clean seq_o <> 0)

let () =
  Alcotest.run "psn_sim"
    [
      ( "workload",
        [
          Alcotest.test_case "message validation" `Quick test_message_validation;
          Alcotest.test_case "poisson generation" `Quick test_workload_poisson;
          Alcotest.test_case "paper spec" `Quick test_workload_paper_spec;
          Alcotest.test_case "fixed count" `Quick test_workload_fixed_count;
          Alcotest.test_case "validation" `Quick test_workload_validation;
        ] );
      ( "engine",
        [
          Alcotest.test_case "delivery at contact start" `Quick test_direct_delivery_at_contact_start;
          Alcotest.test_case "delivery on creation mid-contact" `Quick
            test_delivery_on_creation_mid_contact;
          Alcotest.test_case "no delivery after contact" `Quick test_no_delivery_after_contact_ends;
          Alcotest.test_case "relay chain over time" `Quick test_relay_chain_over_time;
          Alcotest.test_case "cascade through active contacts" `Quick
            test_cascade_through_active_contacts;
          Alcotest.test_case "cascade on creation" `Quick test_cascade_on_creation;
          Alcotest.test_case "contact end blocks exchange" `Quick test_contact_end_blocks_exchange;
          Alcotest.test_case "minimal progress" `Quick test_minimal_progress_overrides_algorithm;
          Alcotest.test_case "validation" `Quick test_engine_validation;
          Alcotest.test_case "negative creation rejected" `Quick test_negative_creation_rejected;
          Alcotest.test_case "copies on direct delivery" `Quick test_copies_direct_delivery;
          Alcotest.test_case "observe_contact" `Quick test_observe_contact_called;
          Alcotest.test_case "tied events drain in pinned order" `Quick test_event_drain_order;
          Alcotest.test_case "epidemic matches oracle" `Slow test_epidemic_matches_flood_oracle;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "overlapping same-pair contacts" `Quick
            test_overlapping_same_pair_contacts;
        ] );
      ( "monotonicity",
        [ Alcotest.test_case "replication monotone" `Quick test_replication_monotone ] );
      ( "ttl",
        [
          Alcotest.test_case "blocks late delivery" `Quick test_ttl_blocks_late_delivery;
          Alcotest.test_case "blocks relaying" `Quick test_ttl_blocks_relaying;
          Alcotest.test_case "validation" `Quick test_ttl_validation;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "of_outcome" `Quick test_metrics_of_outcome;
          Alcotest.test_case "delays sorted" `Quick test_metrics_delays_sorted;
          Alcotest.test_case "pool" `Quick test_metrics_pool;
          Alcotest.test_case "pool singleton and errors" `Quick
            test_metrics_pool_singleton_and_errors;
          Alcotest.test_case "grouped" `Quick test_metrics_grouped;
          Alcotest.test_case "grouped NaN key" `Quick test_metrics_grouped_nan_key;
        ] );
      ( "runner",
        [
          Alcotest.test_case "deterministic" `Quick test_runner_deterministic;
          Alcotest.test_case "parallel deterministic" `Quick test_runner_parallel_deterministic;
          Alcotest.test_case "parallel map" `Quick test_parallel_map;
          Alcotest.test_case "chunked exception order" `Quick
            test_parallel_chunked_exception_order;
          Alcotest.test_case "map_result cells" `Quick test_parallel_map_result_cells;
          Alcotest.test_case "transient retries recover" `Quick test_parallel_retries_recover;
          Alcotest.test_case "permanent not retried" `Quick test_parallel_permanent_not_retried;
          Alcotest.test_case "checkpoint and resume" `Quick test_cached_map_checkpoint_resume;
          Alcotest.test_case "scratch reuse" `Quick test_engine_scratch_reuse;
          Alcotest.test_case "dirty scratch rebuilt" `Quick test_engine_scratch_dirty;
        ] );
      ("properties", qcheck_tests);
      ( "faults",
        [
          Alcotest.test_case "spec basics" `Quick test_faults_spec_basics;
          Alcotest.test_case "downtime intervals" `Quick test_faults_downtime_intervals;
          Alcotest.test_case "degrade" `Quick test_faults_degrade;
          Alcotest.test_case "transfer loss" `Quick test_faults_transfer_loss;
          Alcotest.test_case "engine attempts" `Quick test_engine_attempts;
          Alcotest.test_case "faulted parallel deterministic" `Quick
            test_faulted_runner_deterministic;
        ] );
    ]
