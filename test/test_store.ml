(* Tests for the content-addressed result store: FNV vectors, codec
   round-trips and corruption behaviour (qcheck), on-disk store
   semantics (hit/miss accounting, self-repair, gc order, verify), and
   the memoized runner's bit-identity contract. *)

module Fnv = Core.Fnv
module Codec = Core.Store_codec
module Key = Core.Store_key
module Store = Core.Store

(* --- fnv-1a/64 --- *)

let test_fnv_vectors () =
  (* Standard Fowler-Noll-Vo test vectors. *)
  let check name s expect =
    Alcotest.(check int64) name expect (Fnv.of_string s)
  in
  check "empty" "" 0xcbf29ce484222325L;
  check "a" "a" 0xaf63dc4c8601ec8cL;
  check "foobar" "foobar" 0x85944171f73967e8L

let test_fnv_hex () =
  Alcotest.(check string) "hex of offset basis" "cbf29ce484222325" (Fnv.to_hex (Fnv.of_string ""));
  Alcotest.(check int) "hex width" 16 (String.length (Fnv.to_hex (Fnv.of_string "x")))

let test_fnv_chaining () =
  (* Hashing in two chunks through ~init equals hashing the whole. *)
  let whole = Fnv.of_string "hello world" in
  let chained = Fnv.of_string ~init:(Fnv.of_string "hello ") "world" in
  Alcotest.(check int64) "chained" whole chained

(* --- sample values --- *)

let sample_trace () =
  Core.Trace.create ~n_nodes:4 ~horizon:1000.
    ~kinds:[| Core.Node.Mobile; Core.Node.Stationary; Core.Node.Mobile; Core.Node.Mobile |]
    [
      Core.Contact.make ~a:0 ~b:1 ~t_start:10. ~t_end:50.;
      Core.Contact.make ~a:1 ~b:2 ~t_start:60. ~t_end:120.;
      Core.Contact.make ~a:2 ~b:3 ~t_start:400. ~t_end:900.;
    ]

let sample_outcome ?(algorithm = "direct") ?(delivered = Some 42.5) () =
  let message = Core.Message.make ~id:0 ~src:1 ~dst:2 ~t_create:5. in
  {
    Core.Engine.algorithm;
    records = [| { Core.Engine.message; delivered; copies = 3; attempts = 4 } |];
    copies = 3;
    attempts = 4;
  }

let outcome_equal (a : Core.Engine.outcome) (b : Core.Engine.outcome) =
  String.equal
    (Codec.encode_outcome a)
    (Codec.encode_outcome b)

(* --- codec round-trips (spot checks) --- *)

let ok_or_fail what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %a" what Codec.pp_error e

let test_codec_trace_roundtrip () =
  let trace = sample_trace () in
  let enc = Codec.encode_trace trace in
  let dec = ok_or_fail "decode_trace" (Codec.decode_trace enc) in
  Alcotest.(check string) "canonical re-encode" enc (Codec.encode_trace dec);
  Alcotest.(check int) "n_nodes" (Core.Trace.n_nodes trace) (Core.Trace.n_nodes dec);
  Alcotest.(check (float 0.)) "horizon" (Core.Trace.horizon trace) (Core.Trace.horizon dec)

let test_codec_outcome_roundtrip () =
  let outcome = sample_outcome () in
  let enc = Codec.encode_outcome outcome in
  let dec = ok_or_fail "decode_outcome" (Codec.decode_outcome enc) in
  Alcotest.(check string) "algorithm" outcome.Core.Engine.algorithm dec.Core.Engine.algorithm;
  Alcotest.(check bool) "records" true (outcome_equal outcome dec)

let test_codec_metrics_roundtrip () =
  let m = Core.Metrics.of_outcome (sample_outcome ()) in
  let dec = ok_or_fail "decode_metrics" (Codec.decode_metrics (Codec.encode_metrics m)) in
  Alcotest.(check bool) "Metrics.equal" true (Core.Metrics.equal m dec)

let test_codec_metrics_nan_roundtrip () =
  (* An undelivered workload has nan delays; bit-identity must hold. *)
  let m = Core.Metrics.of_outcome (sample_outcome ~delivered:None ()) in
  let dec = ok_or_fail "decode_metrics" (Codec.decode_metrics (Codec.encode_metrics m)) in
  Alcotest.(check bool) "nan delay survives" true (Float.is_nan dec.Core.Metrics.mean_delay);
  Alcotest.(check bool) "Metrics.equal" true (Core.Metrics.equal m dec)

let test_codec_kind_mismatch () =
  let enc = Codec.encode_trace (sample_trace ()) in
  match Codec.decode_outcome enc with
  | Ok _ -> Alcotest.fail "trace frame decoded as outcome"
  | Error e -> Alcotest.(check int) "kind error offset" 6 e.Codec.offset

let test_codec_truncated () =
  let enc = Codec.encode_trace (sample_trace ()) in
  List.iter
    (fun len ->
      match Codec.decode_trace (String.sub enc 0 len) with
      | Ok _ -> Alcotest.failf "truncated to %d bytes decoded" len
      | Error _ -> ())
    [ 0; 3; 10; String.length enc - 1 ]

(* --- codec qcheck properties --- *)

let gen_trace =
  let open QCheck2.Gen in
  let* n_nodes = int_range 2 10 in
  let* kinds = array_size (pure n_nodes) (oneofl [ Core.Node.Mobile; Core.Node.Stationary ]) in
  let horizon = 1000. in
  let gen_contact =
    let* a = int_range 0 (n_nodes - 1) in
    let* b_off = int_range 1 (n_nodes - 1) in
    let b = (a + b_off) mod n_nodes in
    let* t_start = float_range 0. 900. in
    let* dur = float_range 0.5 99. in
    pure (Core.Contact.make ~a ~b ~t_start ~t_end:(t_start +. dur))
  in
  let* contacts = list_size (int_range 0 30) gen_contact in
  pure (Core.Trace.create ~n_nodes ~horizon ~kinds contacts)

let gen_record =
  let open QCheck2.Gen in
  let* id = int_range 0 10_000 in
  let* src = int_range 0 50 in
  let* dst_off = int_range 1 50 in
  let* t_create = float_range 0. 1e6 in
  let* delivered = option (float_range 0. 1e6) in
  let* copies = int_range 0 1000 in
  let* attempts = int_range 0 1000 in
  pure
    {
      Core.Engine.message = Core.Message.make ~id ~src ~dst:(src + dst_off) ~t_create;
      delivered;
      copies;
      attempts;
    }

let gen_outcome =
  let open QCheck2.Gen in
  let* algorithm = string_size (int_range 0 30) in
  let* records = array_size (int_range 0 20) gen_record in
  let* copies = int_range 0 100_000 in
  let* attempts = int_range 0 100_000 in
  pure { Core.Engine.algorithm; records; copies; attempts }

(* Bit-general floats (any IEEE-754 payload, nan included): metrics
   must round-trip whatever the engine can produce. *)
let gen_bits_float = QCheck2.Gen.(map Int64.float_of_bits int64)

let gen_metrics =
  let open QCheck2.Gen in
  let* algorithm = string_size (int_range 0 30) in
  let* messages = int_range 0 100_000 in
  let* delivered = int_range 0 100_000 in
  let* success_rate = gen_bits_float in
  let* mean_delay = gen_bits_float in
  let* median_delay = gen_bits_float in
  let* copies = int_range 0 100_000 in
  let* attempts = int_range 0 100_000 in
  pure
    {
      Core.Metrics.algorithm;
      messages;
      delivered;
      success_rate;
      mean_delay;
      median_delay;
      copies;
      attempts;
    }

let gen_enumeration =
  let open QCheck2.Gen in
  let gen_path =
    let* n_hops = int_range 1 6 in
    let* nodes = list_size (pure n_hops) (int_range 0 40) in
    let* steps = list_size (pure n_hops) (int_range 1 3) in
    (* strictly increasing step sequence *)
    let hops =
      List.rev
        (snd
           (List.fold_left2
              (fun (step, acc) node inc ->
                let step = step + inc in
                (step, { Core.Path.node; step } :: acc))
              (0, []) nodes steps))
    in
    pure (Core.Path.of_hops hops)
  in
  let gen_arrival =
    let* path = gen_path in
    let* step = int_range 0 500 in
    let* time = float_range 0. 1e5 in
    let* duration = float_range 0. 1e5 in
    pure { Core.Enumerate.path; step; time; duration }
  in
  let* arrivals = array_size (int_range 0 12) gen_arrival in
  let* stopped_early = bool in
  let* steps_processed = int_range 0 1000 in
  let* src = int_range 0 40 in
  let* dst = int_range 0 40 in
  let* t_create = float_range 0. 1e5 in
  pure { Core.Enumerate.arrivals; stopped_early; steps_processed; src; dst; t_create }

let roundtrips encode decode v =
  let enc = encode v in
  match decode enc with
  | Error (e : Codec.error) ->
    QCheck2.Test.fail_reportf "decode failed at offset %d: %s" e.Codec.offset e.Codec.reason
  | Ok w -> String.equal enc (encode w)

(* Flipping any single byte must turn decoding into a typed error —
   never an exception, never a silent success. *)
let corrupt_resists decode enc (pos, mask) =
  let pos = pos mod String.length enc in
  let b = Bytes.of_string enc in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor mask));
  match decode (Bytes.to_string b) with
  | Ok _ -> false
  | Error (_ : Codec.error) -> true
  | exception e -> QCheck2.Test.fail_reportf "decode raised %s" (Printexc.to_string e)

let gen_corruption =
  QCheck2.Gen.(pair (int_range 0 1_000_000) (int_range 1 255))

let qcheck_codec =
  let open QCheck2 in
  [
    Test.make ~name:"trace: decode(encode) re-encodes identically" ~count:100 gen_trace
      (roundtrips Codec.encode_trace Codec.decode_trace);
    Test.make ~name:"outcome: decode(encode) re-encodes identically" ~count:100 gen_outcome
      (roundtrips Codec.encode_outcome Codec.decode_outcome);
    Test.make ~name:"metrics: decode(encode) re-encodes identically" ~count:200 gen_metrics
      (roundtrips Codec.encode_metrics Codec.decode_metrics);
    Test.make ~name:"enumeration: decode(encode) re-encodes identically" ~count:100
      gen_enumeration
      (roundtrips Codec.encode_enumeration Codec.decode_enumeration);
    Test.make ~name:"trace: any flipped byte is a typed decode error" ~count:200
      Gen.(pair gen_trace gen_corruption)
      (fun (trace, c) -> corrupt_resists Codec.decode_trace (Codec.encode_trace trace) c);
    Test.make ~name:"outcome: any flipped byte is a typed decode error" ~count:200
      Gen.(pair gen_outcome gen_corruption)
      (fun (o, c) -> corrupt_resists Codec.decode_outcome (Codec.encode_outcome o) c);
    Test.make ~name:"metrics: any flipped byte is a typed decode error" ~count:200
      Gen.(pair gen_metrics gen_corruption)
      (fun (m, c) -> corrupt_resists Codec.decode_metrics (Codec.encode_metrics m) c);
    Test.make ~name:"enumeration: any flipped byte is a typed decode error" ~count:200
      Gen.(pair gen_enumeration gen_corruption)
      (fun (r, c) ->
        corrupt_resists Codec.decode_enumeration (Codec.encode_enumeration r) c);
    Test.make ~name:"garbage never decodes and never raises" ~count:200
      Gen.(string_size (int_range 0 80))
      (fun s ->
        match Codec.decode_outcome s with
        | Ok _ -> String.length s >= 15 (* only a real frame may decode *)
        | Error (_ : Codec.error) -> true);
  ]
  |> List.map QCheck_alcotest.to_alcotest

(* --- key composition --- *)

let workload = { Core.Workload.rate = 0.25; t_start = 0.; t_end = 600.; n_nodes = 4 }

let test_key_sensitivity () =
  let th = Key.trace_hash (sample_trace ()) in
  let base = Key.outcome ~trace_hash:th ~workload ~algo:"direct" ~seed:1000L () in
  let differs what k =
    Alcotest.(check bool) what false (String.equal (Key.to_hex base) (Key.to_hex k))
  in
  differs "seed changes key" (Key.outcome ~trace_hash:th ~workload ~algo:"direct" ~seed:1001L ());
  differs "algo changes key" (Key.outcome ~trace_hash:th ~workload ~algo:"fresh" ~seed:1000L ());
  differs "workload changes key"
    (Key.outcome ~trace_hash:th
       ~workload:{ workload with Core.Workload.rate = 0.5 }
       ~algo:"direct" ~seed:1000L ());
  differs "faults change key"
    (Key.outcome ~trace_hash:th ~workload ~algo:"direct" ~seed:1000L
       ~faults:Core.Experiments.default_fault_spec ());
  differs "trace changes key"
    (Key.outcome
       ~trace_hash:(Key.trace_hash (Core.Trace.create ~n_nodes:2 ~horizon:10. []))
       ~workload ~algo:"direct" ~seed:1000L ());
  let again = Key.outcome ~trace_hash:th ~workload ~algo:"direct" ~seed:1000L () in
  Alcotest.(check string) "stable" (Key.to_hex base) (Key.to_hex again)

(* --- the on-disk store --- *)

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir = Printf.sprintf "store_test_%d" !counter in
    (* tests run in a fresh sandbox, but stay safe on reruns *)
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    dir

let some_key ?(algo = "direct") ?(seed = 1000L) () =
  Key.outcome ~trace_hash:(Key.trace_hash (sample_trace ())) ~workload ~algo ~seed ()

let test_store_put_find () =
  let st = Store.open_ ~dir:(fresh_dir ()) () in
  let key = some_key () in
  Alcotest.(check bool) "empty store misses" true (Option.is_none (Store.find_outcome st key));
  let outcome = sample_outcome () in
  Store.put_outcome st key outcome;
  (match Store.find_outcome st key with
  | None -> Alcotest.fail "stored entry not found"
  | Some got -> Alcotest.(check bool) "same outcome" true (outcome_equal outcome got));
  let s = Store.stats st in
  Alcotest.(check int) "one entry" 1 s.Store.entries;
  Alcotest.(check int64) "one hit" 1L s.Store.hits;
  Alcotest.(check int64) "one miss" 1L s.Store.misses

let test_store_reopen () =
  let dir = fresh_dir () in
  let key = some_key () in
  let outcome = sample_outcome () in
  let st = Store.open_ ~dir () in
  Store.put_outcome st key outcome;
  (* a second open reads the manifest back *)
  let st2 = Store.open_ ~dir () in
  (match Store.find_outcome st2 key with
  | None -> Alcotest.fail "entry lost across reopen"
  | Some got -> Alcotest.(check bool) "same outcome" true (outcome_equal outcome got));
  (* a lost manifest is rebuilt by scanning the shards *)
  Sys.remove (Filename.concat dir "manifest.psn");
  let st3 = Store.open_ ~dir () in
  Alcotest.(check bool) "rescan finds entry" true (Option.is_some (Store.find_outcome st3 key));
  Alcotest.(check int) "rescan entry count" 1 (Store.stats st3).Store.entries

let entry_files dir =
  let rec walk d =
    Sys.readdir d |> Array.to_list |> List.sort String.compare
    |> List.concat_map (fun name ->
           let p = Filename.concat d name in
           if Sys.is_directory p then walk p
           else if Filename.check_suffix name ".psn" && not (String.equal name "manifest.psn")
           then [ p ]
           else [])
  in
  walk dir

let flip_byte path pos =
  let ic = open_in_bin path in
  let data = Bytes.of_string (really_input_string ic (in_channel_length ic)) in
  close_in ic;
  Bytes.set data pos (Char.chr (Char.code (Bytes.get data pos) lxor 0x5a));
  let oc = open_out_bin path in
  output_bytes oc data;
  close_out oc

let test_store_corruption_repair () =
  let dir = fresh_dir () in
  let st = Store.open_ ~dir () in
  let key = some_key () in
  let outcome = sample_outcome () in
  Store.put_outcome st key outcome;
  let path = match entry_files dir with [ p ] -> p | l -> Alcotest.failf "%d entries" (List.length l) in
  flip_byte path 20;
  (* verify pinpoints the corrupt frame... *)
  let report = Store.verify st in
  (match report.Store.fsck_errors with
  | [ e ] ->
    Alcotest.(check int) "offset of CRC failure" 11 e.Store.fsck_offset;
    Alcotest.(check bool) "reason mentions CRC" true
      (String.length e.Store.fsck_reason >= 3 && String.equal (String.sub e.Store.fsck_reason 0 3) "CRC")
  | l -> Alcotest.failf "expected 1 fsck error, got %d" (List.length l));
  (* ...a lookup treats it as a miss... *)
  Alcotest.(check bool) "corrupt entry misses" true (Option.is_none (Store.find_outcome st key));
  (* ...and the recompute-store cycle repairs it. *)
  Store.put_outcome st key outcome;
  Alcotest.(check bool) "repaired" true (Option.is_some (Store.find_outcome st key));
  Alcotest.(check int) "verify clean after repair" 0
    (List.length (Store.verify st).Store.fsck_errors)

let test_store_gc_order () =
  let st = Store.open_ ~dir:(fresh_dir ()) () in
  let k1 = some_key ~seed:1L () in
  let k2 = some_key ~seed:2L () in
  let k3 = some_key ~seed:3L () in
  let outcome = sample_outcome () in
  Store.put_outcome st k1 outcome;
  Store.put_outcome st k2 outcome;
  Store.put_outcome st k3 outcome;
  (* touch k1 so k2 becomes the least recently used *)
  ignore (Store.find_outcome st k1);
  let size = (Store.stats st).Store.bytes / 3 in
  let r = Store.gc st ~max_bytes:(2 * size) in
  Alcotest.(check int) "evicted one" 1 r.Store.evicted;
  Alcotest.(check int) "kept two" 2 r.Store.kept;
  Alcotest.(check bool) "k1 kept (recently used)" true (Option.is_some (Store.find_outcome st k1));
  Alcotest.(check bool) "k2 evicted (oldest)" true (Option.is_none (Store.find_outcome st k2));
  Alcotest.(check bool) "k3 kept" true (Option.is_some (Store.find_outcome st k3));
  let r0 = Store.gc st ~max_bytes:0 in
  Alcotest.(check int) "gc 0 empties" 0 r0.Store.kept;
  Alcotest.(check int) "no entries left" 0 (Store.stats st).Store.entries

let test_store_enumeration_roundtrip () =
  let st = Store.open_ ~dir:(fresh_dir ()) () in
  let trace = sample_trace () in
  let snap = Core.Snapshot.of_trace trace in
  let config = { Core.Enumerate.default_config with Core.Enumerate.k = 50 } in
  let result = Core.Enumerate.run ~config snap ~src:0 ~dst:3 ~t_create:5. in
  let key =
    Key.enumeration ~trace_hash:(Key.trace_hash trace) ~config ~src:0 ~dst:3 ~t_create:5.
  in
  Store.put_enumeration st key result;
  match Store.find_enumeration st key with
  | None -> Alcotest.fail "stored enumeration not found"
  | Some got ->
    Alcotest.(check string) "canonical encoding identical"
      (Codec.encode_enumeration result)
      (Codec.encode_enumeration got)

(* --- memoized runner: the bit-identity acceptance criterion --- *)

let test_runner_warm_bit_identical () =
  let dir = fresh_dir () in
  (* A fixed 8-node trace with multi-hop relay chains, so epidemic and
     fresh actually branch and the cached outcomes are non-trivial. *)
  let trace =
    let c a b t_start t_end = Core.Contact.make ~a ~b ~t_start ~t_end in
    Core.Trace.create ~n_nodes:8 ~horizon:2000.
      [
        c 0 1 10. 120.; c 1 2 60. 250.; c 2 3 200. 400.; c 3 4 350. 600.;
        c 4 5 500. 800.; c 5 6 700. 1000.; c 6 7 900. 1300.; c 0 7 1100. 1500.;
        c 1 5 300. 450.; c 2 6 550. 750.; c 3 7 150. 280.; c 0 4 950. 1200.;
        c 1 6 1250. 1600.; c 2 7 1400. 1800.; c 0 3 1650. 1900.;
      ]
  in
  let workload = { Core.Workload.rate = 0.02; t_start = 0.; t_end = 1500.; n_nodes = 8 } in
  let spec = { Core.Runner.workload; seeds = Core.Runner.default_seeds 2 } in
  let entries =
    List.filter
      (fun (e : Core.Registry.entry) ->
        List.mem e.Core.Registry.name [ "direct"; "epidemic"; "fresh" ])
      Core.Registry.all
  in
  let factories = List.map (fun (e : Core.Registry.entry) -> e.Core.Registry.factory) entries in
  let st = Store.open_ ~dir () in
  let caches =
    let trace_hash = Key.trace_hash trace in
    List.map
      (fun (e : Core.Registry.entry) ->
        Core.Store_memo.runner_cache ~store:st ~trace_hash ~workload ~algo:e.Core.Registry.name
          ())
      entries
  in
  let baseline = Core.Runner.run_many ~jobs:2 ~trace ~spec ~factories () in
  let cold = Core.Runner.run_many ~jobs:2 ~stores:caches ~trace ~spec ~factories () in
  let misses = (Store.stats st).Store.misses in
  Alcotest.(check int64) "cold misses = grid size" (Int64.of_int (3 * 2)) misses;
  (* warm, at a different jobs count, must be bit-identical *)
  let warm = Core.Runner.run_many ~jobs:1 ~stores:caches ~trace ~spec ~factories () in
  Alcotest.(check int64) "warm hits = grid size" (Int64.of_int (3 * 2))
    (Store.stats st).Store.hits;
  List.iteri
    (fun i ((b : Core.Metrics.t), (c, w)) ->
      Alcotest.(check bool) (Printf.sprintf "algo %d cold = uncached" i) true (Core.Metrics.equal b c);
      Alcotest.(check bool) (Printf.sprintf "algo %d warm = cold" i) true (Core.Metrics.equal c w))
    (List.combine baseline (List.combine cold warm))

(* --- crash recovery: tmp sweep and intent-journal replay ---

   The [error] failpoint action aborts an insert/gc at the same spot a
   [crash] would kill the process, but inside this test runner; the
   kill-based matrix over the same sites lives in crash_matrix.ml. *)

let with_failpoints spec f =
  match Core.Failpoint.parse spec with
  | Error msg -> Alcotest.fail msg
  | Ok plan ->
    Core.Failpoint.install plan;
    Fun.protect ~finally:Core.Failpoint.uninstall f

let injected f =
  match f () with
  | () -> Alcotest.fail "failpoint did not fire"
  | exception Core.Failpoint.Injected _ -> ()

let test_store_tmp_sweep () =
  let dir = fresh_dir () in
  let st = Store.open_ ~dir () in
  Store.put_outcome st (some_key ()) (sample_outcome ());
  (* orphan temp files at the root and next to a real entry *)
  let orphan1 = Filename.concat dir "deadbeef.tmp" in
  let shard_dir = Filename.dirname (List.hd (entry_files dir)) in
  let orphan2 = Filename.concat shard_dir "cafe.tmp" in
  List.iter
    (fun p ->
      let oc = open_out_bin p in
      output_string oc "junk";
      close_out oc)
    [ orphan1; orphan2 ];
  let st2 = Store.open_ ~dir () in
  Alcotest.(check int) "both orphans swept" 2 (Store.stats st2).Store.tmp_swept;
  Alcotest.(check bool) "root orphan gone" false (Sys.file_exists orphan1);
  Alcotest.(check bool) "shard orphan gone" false (Sys.file_exists orphan2);
  Alcotest.(check int) "entry survives" 1 (Store.stats st2).Store.entries;
  Alcotest.(check int) "clean reopen sweeps nothing" 0
    (Store.stats (Store.open_ ~dir ())).Store.tmp_swept

let test_store_insert_crash_windows () =
  (* died after journalling the intent, before the rename: reopen
     sweeps the half-written tmp and drops the dangling intent *)
  let dir = fresh_dir () in
  let st = Store.open_ ~dir () in
  let key = some_key () in
  with_failpoints "store.insert.pre_rename=error@1" (fun () ->
      injected (fun () -> Store.put_outcome st key (sample_outcome ())));
  let st2 = Store.open_ ~dir () in
  Alcotest.(check int) "no entry committed" 0 (Store.stats st2).Store.entries;
  Alcotest.(check int) "tmp swept" 1 (Store.stats st2).Store.tmp_swept;
  Alcotest.(check int) "verify clean" 0 (List.length (Store.verify st2).Store.fsck_errors);
  (* died after the rename, before the manifest update: the replay
     adopts the committed frame — a committed entry is never lost *)
  let dir = fresh_dir () in
  let st = Store.open_ ~dir () in
  with_failpoints "store.insert.post_rename=error@1" (fun () ->
      injected (fun () -> Store.put_outcome st key (sample_outcome ())));
  let st2 = Store.open_ ~dir () in
  Alcotest.(check int) "journal intent replayed" 1 (Store.stats st2).Store.journal_replays;
  Alcotest.(check bool) "committed entry adopted" true
    (Option.is_some (Store.find_outcome st2 key));
  Alcotest.(check int) "verify clean after adopt" 0
    (List.length (Store.verify st2).Store.fsck_errors)

let test_store_gc_crash_window () =
  let dir = fresh_dir () in
  let st = Store.open_ ~dir () in
  Store.put_outcome st (some_key ~seed:1L ()) (sample_outcome ());
  Store.put_outcome st (some_key ~seed:2L ()) (sample_outcome ());
  (* died between journalling an eviction and removing its file: the
     replay finishes the deletion, leaving no half-deleted state *)
  with_failpoints "store.gc.pre_remove=error@1" (fun () ->
      injected (fun () -> ignore (Store.gc st ~max_bytes:0)));
  let st2 = Store.open_ ~dir () in
  Alcotest.(check int) "delete intent replayed" 1 (Store.stats st2).Store.journal_replays;
  Alcotest.(check int) "eviction completed at reopen" 1 (Store.stats st2).Store.entries;
  Alcotest.(check int) "verify clean" 0 (List.length (Store.verify st2).Store.fsck_errors)

let test_runner_stores_arity () =
  let trace = sample_trace () in
  let spec = { Core.Runner.workload; seeds = [ 1000L ] } in
  let st = Store.open_ ~dir:(fresh_dir ()) () in
  let cache =
    Core.Store_memo.runner_cache ~store:st ~trace_hash:(Key.trace_hash trace) ~workload
      ~algo:"direct" ()
  in
  Alcotest.check_raises "one cache for two factories"
    (Invalid_argument "Runner: need one cache per factory") (fun () ->
      ignore
        (Core.Runner.run_many ~jobs:1 ~stores:[ cache ] ~trace ~spec
           ~factories:[ Core.Direct.factory; Core.Epidemic.factory ]
           ()))

let () =
  Alcotest.run "store"
    [
      ( "fnv",
        [
          Alcotest.test_case "vectors" `Quick test_fnv_vectors;
          Alcotest.test_case "hex" `Quick test_fnv_hex;
          Alcotest.test_case "chaining" `Quick test_fnv_chaining;
        ] );
      ( "codec",
        [
          Alcotest.test_case "trace round-trip" `Quick test_codec_trace_roundtrip;
          Alcotest.test_case "outcome round-trip" `Quick test_codec_outcome_roundtrip;
          Alcotest.test_case "metrics round-trip" `Quick test_codec_metrics_roundtrip;
          Alcotest.test_case "metrics nan round-trip" `Quick test_codec_metrics_nan_roundtrip;
          Alcotest.test_case "kind mismatch" `Quick test_codec_kind_mismatch;
          Alcotest.test_case "truncation" `Quick test_codec_truncated;
        ] );
      ("codec-properties", qcheck_codec);
      ("key", [ Alcotest.test_case "sensitivity" `Quick test_key_sensitivity ]);
      ( "store",
        [
          Alcotest.test_case "put/find/stats" `Quick test_store_put_find;
          Alcotest.test_case "reopen and rescan" `Quick test_store_reopen;
          Alcotest.test_case "corruption: verify, miss, repair" `Quick
            test_store_corruption_repair;
          Alcotest.test_case "gc evicts in access order" `Quick test_store_gc_order;
          Alcotest.test_case "enumeration round-trip" `Quick test_store_enumeration_roundtrip;
        ] );
      ( "crash-recovery",
        [
          Alcotest.test_case "orphaned tmp files swept" `Quick test_store_tmp_sweep;
          Alcotest.test_case "insert crash windows" `Quick test_store_insert_crash_windows;
          Alcotest.test_case "gc crash window" `Quick test_store_gc_crash_window;
        ] );
      ( "runner",
        [
          Alcotest.test_case "warm replay is bit-identical across jobs" `Quick
            test_runner_warm_bit_identical;
          Alcotest.test_case "stores arity validated" `Quick test_runner_stores_arity;
        ] );
    ]
