(* Crash-point matrix — the issue's acceptance criterion, end to end
   through the real CLI binary.

   For every dangerous site (store insert windows, manifest rename,
   runner task, engine hot loop) and a spread of --jobs values, a
   sweep is killed by an injected `crash` failpoint (Unix._exit 170,
   no cleanup — the honest stand-in for kill -9), and we then assert:

   - the death really was the injected crash (exit code 170);
   - `store verify` on the survivor store exits 0: recovery at open
     (tmp sweep + intent-journal replay) left no corrupt frame;
   - re-running the same command without the failpoint exits 0 and
     prints output byte-identical to a never-interrupted run, modulo
     the `store ...` report lines whose hit/miss split legitimately
     differs on a resumed run.

   The gc eviction windows get the same treatment through `psn store
   gc --failpoints`. Usage: crash_matrix <psn_cli.exe> <trace-file>. *)

let () =
  if Array.length Sys.argv <> 3 then begin
    prerr_endline "usage: crash_matrix <psn_cli.exe> <trace-file>";
    exit 2
  end

let cli = Filename.quote Sys.argv.(1)
let trace = Filename.quote Sys.argv.(2)

let failures = ref 0

let failf fmt =
  Printf.ksprintf
    (fun s ->
      incr failures;
      Printf.eprintf "FAIL %s\n%!" s)
    fmt

let sh fmt = Printf.ksprintf Sys.command fmt

let rm_rf dir = ignore (sh "rm -rf %s" (Filename.quote dir))

(* Stdout minus the store-report lines (a resumed run reports hits
   where the uninterrupted one reported misses — by design). *)
let canon path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  String.split_on_char '\n' s
  |> List.filter (fun l ->
         not (String.length l >= 6 && String.equal (String.sub l 0 6) "store "))
  |> String.concat "\n"

let simulate ?failpoints ~dir ~jobs out =
  let fp =
    match failpoints with
    | None -> ""
    | Some s -> Printf.sprintf " --failpoints %s" (Filename.quote s)
  in
  sh "%s simulate -t %s --seeds 2 -a direct,epidemic -j %d --chunk 1 --store %s --checkpoint 1%s > %s 2>/dev/null"
    cli trace jobs (Filename.quote dir) fp (Filename.quote out)

let verify dir = sh "%s store verify --store %s >/dev/null 2>&1" cli (Filename.quote dir)

let crash_exit = 170

let () =
  (* The uninterrupted reference output (scheduling-independent, so
     one baseline serves every jobs value). *)
  rm_rf "cm_base";
  let code = simulate ~dir:"cm_base" ~jobs:1 "cm_base.out" in
  if code <> 0 then failf "baseline simulate exited %d" code;
  let baseline = canon "cm_base.out" in
  if String.length baseline = 0 then failf "baseline produced no output";

  (* site, failpoint rule, jobs values to kill under. The store's
     single-writer sites are scheduling-independent by construction,
     so jobs=1 suffices; the task/engine sites also crash under a
     parallel pool. *)
  let matrix =
    [
      ("store.insert.pre_journal", "crash@1", [ 1 ]);
      ("store.insert.pre_rename", "crash@2", [ 1 ]);
      ("store.insert.post_rename", "crash@1", [ 1 ]);
      ("store.manifest.pre_rename", "crash@2", [ 1 ]);
      ("runner.task", "crash@2", [ 1; 4 ]);
      ("engine.contact", "crash@5", [ 1; 4 ]);
    ]
  in
  List.iter
    (fun (site, rule, jobs_list) ->
      List.iter
        (fun jobs ->
          let label = Printf.sprintf "%s=%s jobs=%d" site rule jobs in
          let dir = "cm_run" in
          rm_rf dir;
          let code =
            simulate ~failpoints:(Printf.sprintf "%s=%s" site rule) ~dir ~jobs "cm_crash.out"
          in
          if code <> crash_exit then failf "%s: crash run exited %d, want %d" label code crash_exit
          else begin
            let v = verify dir in
            if v <> 0 then failf "%s: store verify exited %d after crash" label v;
            let r = simulate ~dir ~jobs "cm_resume.out" in
            if r <> 0 then failf "%s: resume exited %d" label r
            else if not (String.equal (canon "cm_resume.out") baseline) then
              failf "%s: resumed output differs from uninterrupted run" label
          end)
        jobs_list)
    matrix;

  (* gc eviction windows: populate, kill mid-gc, prove recovery and
     that finishing the gc still works. *)
  List.iter
    (fun site ->
      let dir = "cm_gc" in
      rm_rf dir;
      let code = simulate ~dir ~jobs:1 "cm_gc.out" in
      if code <> 0 then failf "gc populate exited %d" code;
      let code =
        sh "%s store gc --store %s --max-bytes 0 --failpoints %s >/dev/null 2>&1" cli
          (Filename.quote dir)
          (Filename.quote (Printf.sprintf "%s=crash@1" site))
      in
      if code <> crash_exit then failf "%s: gc crash exited %d, want %d" site code crash_exit
      else begin
        let v = verify dir in
        if v <> 0 then failf "%s: store verify exited %d after gc crash" site v;
        let g = sh "%s store gc --store %s --max-bytes 0 >/dev/null 2>&1" cli (Filename.quote dir) in
        if g <> 0 then failf "%s: finishing gc exited %d" site g;
        let v2 = verify dir in
        if v2 <> 0 then failf "%s: store verify exited %d after finished gc" site v2
      end)
    [ "store.gc.pre_remove"; "store.gc.post_remove" ];

  (* Flight recorder: a serve session armed with --flight dies on an
     injected crash (exit 170); the post-mortem dump must exist and
     pass `psn metrics check --flight` with at least one ring event
     (the protocol lines noted before the death). *)
  (let script = "cm_serve.script" in
   let oc = open_out script in
   output_string oc
     "0,1,0,60\n1,2,30,90\n2,3,80,150\nadvance 100\ninject 0 3\n0,3,120,130\nadvance 200\nquit\n";
   close_out oc;
   let dump = "cm_flight.json" in
   if Sys.file_exists dump then Sys.remove dump;
   let code =
     sh "%s serve --script %s --window 200 --flight %s --failpoints engine.contact=crash@1 >/dev/null 2>&1"
       cli (Filename.quote script) (Filename.quote dump)
   in
   if code <> crash_exit then failf "flight: serve crash exited %d, want %d" code crash_exit
   else if not (Sys.file_exists dump) then failf "flight: no post-mortem dump at %s" dump
   else begin
     let check = sh "%s metrics check --flight %s >/dev/null 2>&1" cli (Filename.quote dump) in
     if check <> 0 then failf "flight: metrics check --flight exited %d" check;
     let ic = open_in_bin dump in
     let text = really_input_string ic (in_channel_length ic) in
     close_in ic;
     let has needle =
       let nl = String.length needle and tl = String.length text in
       let rec go i = i + nl <= tl && (String.equal (String.sub text i nl) needle || go (i + 1)) in
       go 0
     in
     if not (has "\"seq\"") then failf "flight: dump has no ring events";
     if not (has "failpoint crash at engine.contact") then
       failf "flight: dump reason does not name the crash site"
   end);

  if !failures > 0 then begin
    Printf.eprintf "crash matrix: %d scenario(s) failed\n%!" !failures;
    exit 1
  end;
  print_endline "crash matrix: all scenarios recovered and resumed bit-identically"
