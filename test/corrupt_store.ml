(* Test helper: flip one byte in the first store entry (path order)
   under the directory given as argv(1), so the golden CLI test can
   exercise [store verify] on a deterministically corrupted frame.
   Skips manifest.psn — the point is a damaged entry, not a lost
   index. *)

let rec entries dir =
  Sys.readdir dir |> Array.to_list |> List.sort String.compare
  |> List.concat_map (fun name ->
         let p = Filename.concat dir name in
         if Sys.is_directory p then entries p
         else if Filename.check_suffix name ".psn" && not (String.equal name "manifest.psn")
         then [ p ]
         else [])

let () =
  let dir = Sys.argv.(1) in
  match entries dir with
  | [] ->
    prerr_endline "corrupt_store: no entries found";
    exit 1
  | path :: _ ->
    let ic = open_in_bin path in
    let data = Bytes.of_string (really_input_string ic (in_channel_length ic)) in
    close_in ic;
    (* byte 20 sits inside the payload, past the 11-byte header *)
    Bytes.set data 20 (Char.chr (Char.code (Bytes.get data 20) lxor 0x5a));
    let oc = open_out_bin path in
    output_bytes oc data;
    close_out oc
