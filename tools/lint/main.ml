(* psn_lint — the determinism-contract linter.

   Usage: psn_lint [--config lint.toml] [--format human|json] [--rules]
          PATH...

   Exit codes: 0 clean, 1 findings, 2 usage or configuration error. *)

let usage = "psn_lint [--config FILE] [--format human|json] [--rules] PATH..."

let () =
  let format = ref `Human in
  let config_path = ref None in
  let list_rules = ref false in
  let paths = ref [] in
  let set_format = function
    | "human" -> format := `Human
    | "json" -> format := `Json
    | other ->
      Printf.eprintf "psn_lint: unknown format %S (expected human or json)\n" other;
      exit 2
  in
  let spec =
    [
      ("--config", Arg.String (fun f -> config_path := Some f), "FILE per-path allowlist (lint.toml)");
      ("--format", Arg.String set_format, "FMT output format: human (default) or json");
      ("--rules", Arg.Set list_rules, " list every rule with its rationale and exit");
    ]
  in
  (try Arg.parse_argv Sys.argv spec (fun p -> paths := p :: !paths) usage with
  | Arg.Bad msg ->
    prerr_string msg;
    exit 2
  | Arg.Help msg ->
    print_string msg;
    exit 0);
  if !list_rules then begin
    Format.printf "%a" Psn_lint.Rules.pp_list ();
    exit 0
  end;
  let paths = List.rev !paths in
  if List.is_empty paths then begin
    Printf.eprintf "psn_lint: no paths given\nusage: %s\n" usage;
    exit 2
  end;
  List.iter
    (fun p ->
      if not (Sys.file_exists p) then begin
        Printf.eprintf "psn_lint: no such file or directory: %s\n" p;
        exit 2
      end)
    paths;
  let config =
    match !config_path with
    | None -> Psn_lint.Config.empty
    | Some file -> (
      match Psn_lint.Config.load file with
      | Ok c -> c
      | Error msg ->
        Printf.eprintf "psn_lint: %s\n" msg;
        exit 2)
  in
  let findings = Psn_lint.Linter.run ~config paths in
  (match !format with
  | `Human ->
    List.iter (fun d -> Format.printf "%a@." Psn_lint.Diagnostic.pp d) findings;
    let n = List.length findings in
    if n > 0 then
      Format.printf "%d finding%s (see --rules for rationale; suppress with [@lint.allow \"<rule>\"])@."
        n
        (if n = 1 then "" else "s")
  | `Json ->
    Format.printf "{\"findings\":[";
    List.iteri
      (fun i d ->
        if i > 0 then Format.printf ",";
        Format.printf "@.  %a" Psn_lint.Diagnostic.pp_json d)
      findings;
    if not (List.is_empty findings) then Format.printf "@.";
    Format.printf "]}@.");
  exit (if List.is_empty findings then 0 else 1)
