(* psn_lint — the determinism-contract linter.

   Usage: psn_lint [--config lint.toml] [--format human|json|sarif]
          [--graph json|dot] [--jobs N] [--rules] PATH...

   Exit codes: 0 clean, 1 findings, 2 usage or configuration error.
   --graph prints the resolved whole-program call graph instead of
   findings and always exits 0; its output is byte-stable across runs
   and across --jobs values. *)

let usage =
  "psn_lint [--config FILE] [--format human|json|sarif] [--graph json|dot] [--jobs N] [--rules] \
   PATH..."

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* SARIF 2.1.0, the GitHub code-scanning subset: one run, the full
   rule registry in the driver, one result per finding. Emitted
   sorted (findings already are), so the artifact is deterministic. *)
let print_sarif findings =
  Format.printf
    "{\"version\":\"2.1.0\",\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\"runs\":[{";
  Format.printf "\"tool\":{\"driver\":{\"name\":\"psn_lint\",\"rules\":[";
  List.iteri
    (fun i (r : Psn_lint.Rules.t) ->
      if i > 0 then Format.printf ",";
      Format.printf
        "@.  {\"id\":\"%s\",\"shortDescription\":{\"text\":\"%s\"},\"fullDescription\":{\"text\":\"%s\"}}"
        (json_escape r.Psn_lint.Rules.name)
        (json_escape r.Psn_lint.Rules.summary)
        (json_escape r.Psn_lint.Rules.rationale))
    Psn_lint.Rules.all;
  Format.printf "@.]}},\"results\":[";
  List.iteri
    (fun i (d : Psn_lint.Diagnostic.t) ->
      if i > 0 then Format.printf ",";
      Format.printf
        "@.  {\"ruleId\":\"%s\",\"level\":\"error\",\"message\":{\"text\":\"%s\"},\"locations\":[{\"physicalLocation\":{\"artifactLocation\":{\"uri\":\"%s\"},\"region\":{\"startLine\":%d,\"startColumn\":%d}}}]}"
        (json_escape d.Psn_lint.Diagnostic.rule)
        (json_escape d.Psn_lint.Diagnostic.message)
        (json_escape d.Psn_lint.Diagnostic.file)
        d.Psn_lint.Diagnostic.line
        (d.Psn_lint.Diagnostic.col + 1))
    findings;
  Format.printf "@.]}]}@."

let () =
  let format = ref `Human in
  let graph = ref None in
  let jobs = ref 1 in
  let config_path = ref None in
  let list_rules = ref false in
  let paths = ref [] in
  let set_format = function
    | "human" -> format := `Human
    | "json" -> format := `Json
    | "sarif" -> format := `Sarif
    | other ->
      Printf.eprintf "psn_lint: unknown format %S (expected human, json or sarif)\n" other;
      exit 2
  in
  let set_graph = function
    | "json" -> graph := Some `Json
    | "dot" -> graph := Some `Dot
    | other ->
      Printf.eprintf "psn_lint: unknown graph format %S (expected json or dot)\n" other;
      exit 2
  in
  let spec =
    [
      ("--config", Arg.String (fun f -> config_path := Some f), "FILE per-path allowlist (lint.toml)");
      ("--format", Arg.String set_format, "FMT output format: human (default), json or sarif");
      ( "--graph",
        Arg.String set_graph,
        "FMT print the whole-program call graph (json or dot) and exit 0" );
      ("--jobs", Arg.Int (fun n -> jobs := n), "N fan per-file analysis over N domains (default 1)");
      ("--rules", Arg.Set list_rules, " list every rule with its rationale and exit");
    ]
  in
  (try Arg.parse_argv Sys.argv spec (fun p -> paths := p :: !paths) usage with
  | Arg.Bad msg ->
    prerr_string msg;
    exit 2
  | Arg.Help msg ->
    print_string msg;
    exit 0);
  if !list_rules then begin
    Format.printf "%a" Psn_lint.Rules.pp_list ();
    exit 0
  end;
  let paths = List.rev !paths in
  if List.is_empty paths then begin
    Printf.eprintf "psn_lint: no paths given\nusage: %s\n" usage;
    exit 2
  end;
  if !jobs < 1 then begin
    Printf.eprintf "psn_lint: --jobs must be at least 1\n";
    exit 2
  end;
  List.iter
    (fun p ->
      if not (Sys.file_exists p) then begin
        Printf.eprintf "psn_lint: no such file or directory: %s\n" p;
        exit 2
      end)
    paths;
  let config =
    match !config_path with
    | None -> Psn_lint.Config.empty
    | Some file -> (
      match Psn_lint.Config.load file with
      | Ok c -> c
      | Error msg ->
        Printf.eprintf "psn_lint: %s\n" msg;
        exit 2)
  in
  let findings, callgraph = Psn_lint.Linter.analyze ~config ~jobs:!jobs paths in
  match !graph with
  | Some `Json ->
    Format.printf "%a" Psn_lint.Callgraph.pp_json callgraph;
    exit 0
  | Some `Dot ->
    Format.printf "%a" Psn_lint.Callgraph.pp_dot callgraph;
    exit 0
  | None ->
    (match !format with
    | `Human ->
      List.iter (fun d -> Format.printf "%a@." Psn_lint.Diagnostic.pp d) findings;
      let n = List.length findings in
      if n > 0 then
        Format.printf
          "%d finding%s (see --rules for rationale; suppress with [@lint.allow \"<rule>\"])@." n
          (if n = 1 then "" else "s")
    | `Json ->
      Format.printf "{\"findings\":[";
      List.iteri
        (fun i d ->
          if i > 0 then Format.printf ",";
          Format.printf "@.  %a" Psn_lint.Diagnostic.pp_json d)
        findings;
      if not (List.is_empty findings) then Format.printf "@.";
      Format.printf "]}@."
    | `Sarif -> print_sarif findings);
    exit (if List.is_empty findings then 0 else 1)
